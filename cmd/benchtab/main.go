// Command benchtab prints the regenerated experiment tables (E1–E13)
// from the experiments registry, or an honest-run profile of a named
// scenario suite.
//
// Usage:
//
//	benchtab                 # all experiments, one worker per CPU
//	benchtab -e e2,e6        # a subset by ID
//	benchtab -run 'E1[0-3]'  # a subset by regexp over IDs
//	benchtab -parallel 4     # cap the worker pool
//	benchtab -json           # machine-readable tables (BENCH artifacts)
//	benchtab -suite smoke    # per-scenario honest-run stats for a suite
//
// Output is deterministic: tables appear in canonical experiment order
// and are byte-identical for any -parallel value; suite tables are a
// pure function of (suite, seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/churn"
	"repro/internal/experiments"
	"repro/internal/faithful"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	only := fs.String("e", "", "comma-separated experiment IDs (e.g. e1,e6); empty = all")
	pattern := fs.String("run", "", "regexp over experiment IDs (case-insensitive, whole-ID); empty = all")
	parallel := fs.Int("parallel", 0, "worker-pool size; 0 = one per CPU")
	asJSON := fs.Bool("json", false, "emit tables as JSON instead of aligned text")
	suite := fs.String("suite", "", "profile a named scenario suite (honest runs) instead of the experiment registry")
	seed := fs.Int64("seed", 1, "scenario-suite base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite != "" {
		return runSuite(*suite, *seed, *asJSON, w)
	}
	exps, err := selectExperiments(*only, *pattern)
	if err != nil {
		return err
	}
	tables, err := experiments.Runner{Workers: *parallel}.Run(exps)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	for _, t := range tables {
		fmt.Fprintln(w, experiments.Render(t))
	}
	return nil
}

// runSuite prints one honest faithful-protocol run per scenario of a
// named suite as an experiments.Table: topology shape, workload size,
// and the construction-phase message/byte overhead. It is the quick
// profile of what a suite sweep will cost before committing to the
// full deviation search (faithcheck -suite).
func runSuite(name string, seed int64, asJSON bool, w io.Writer) error {
	s, ok := scenario.LookupSuite(name)
	if !ok {
		return fmt.Errorf("unknown suite %q (available: %v)", name, scenario.SuiteNames())
	}
	specs := s.Specs(seed)
	notGreenLit := 0
	t := &experiments.Table{
		ID:         "suite:" + s.Name,
		Title:      fmt.Sprintf("Scenario suite %q (seed %d): honest-run profile", s.Name, seed),
		PaperClaim: s.Description,
		Headers:    []string{"scenario", "n", "edges", "avg deg", "flows", "construction msgs", "construction bytes", "green-lit"},
	}
	for _, spec := range specs {
		p, err := profileSpec(spec)
		if err != nil {
			return err
		}
		if !p.completed {
			notGreenLit++
		}
		t.Rows = append(t.Rows, []string{
			spec.Describe(), fmt.Sprint(p.n), fmt.Sprint(p.edges),
			fmt.Sprintf("%.1f", float64(2*p.edges)/float64(p.n)),
			fmt.Sprint(p.flows),
			fmt.Sprint(p.construction.Sent), fmt.Sprint(p.construction.Bytes),
			fmt.Sprintf("%v", p.completed),
		})
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]*experiments.Table{t}); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(w, experiments.Render(t))
	}
	// An honest run (no deviator) must always be green-lit; a refusal
	// means the scenario itself is broken, so exit non-zero for CI.
	if notGreenLit > 0 {
		return fmt.Errorf("honest run not green-lit in %d/%d scenarios", notGreenLit, len(specs))
	}
	return nil
}

// profile is one suite row: topology shape (epoch 0 for dynamic
// scenarios), total flow count and construction overhead — summed
// across every epoch of a churn timeline, so the row prices the whole
// sweep, not just its first epoch.
type profile struct {
	n, edges     int
	flows        int
	construction sim.Counters
	completed    bool
}

// profileSpec drives the honest protocol for one spec: a single run
// for static specs, one run per epoch for dynamic ones (counters
// aggregated with sim.Counters.Add).
func profileSpec(spec scenario.Spec) (profile, error) {
	if !spec.Churn.Dynamic() {
		c, err := spec.Compile()
		if err != nil {
			return profile{}, err
		}
		res, err := faithful.Run(c.FaithfulConfig())
		if err != nil {
			return profile{}, fmt.Errorf("%s: %w", spec.Describe(), err)
		}
		return profile{
			n: c.Graph.N(), edges: c.Graph.M(),
			flows:        len(c.Params.Traffic),
			construction: res.Construction,
			completed:    res.Completed,
		}, nil
	}
	tl, err := churn.Build(spec)
	if err != nil {
		return profile{}, err
	}
	p := profile{
		n:     tl.Epochs[0].Compiled.Graph.N(),
		edges: tl.Epochs[0].Compiled.Graph.M(),
	}
	p.completed = true
	for _, e := range tl.Epochs {
		res, err := faithful.Run(e.Compiled.FaithfulConfig())
		if err != nil {
			return profile{}, fmt.Errorf("%s epoch %d: %w", spec.Describe(), e.Index+1, err)
		}
		if !res.Completed {
			p.completed = false
		}
		p.flows += len(e.Compiled.Params.Traffic)
		p.construction.Add(res.Construction)
	}
	return p, nil
}

// selectExperiments resolves the -e ID list and the -run regexp
// against the registry, erroring on IDs or patterns that match
// nothing — before any experiment has spent cycles.
func selectExperiments(only, pattern string) ([]experiments.Experiment, error) {
	exps, err := experiments.Match(pattern)
	if err != nil {
		return nil, err
	}
	if only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(strings.ToLower(only), ",") {
			if id = strings.TrimSpace(id); id != "" {
				if _, ok := experiments.Lookup(id); !ok {
					return nil, fmt.Errorf("unknown experiment %q", id)
				}
				want[id] = true
			}
		}
		filtered := exps[:0]
		for _, e := range exps {
			if want[strings.ToLower(e.ID)] {
				filtered = append(filtered, e)
			}
		}
		exps = filtered
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiment matched -e %q -run %q", only, pattern)
	}
	return exps, nil
}
