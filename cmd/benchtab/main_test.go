package main

import "testing"

func TestRunSubset(t *testing.T) {
	if err := run([]string{"-e", "e7"}); err != nil {
		t.Fatalf("run(-e e7): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should error")
	}
}
