package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-e", "e7"}, &out); err != nil {
		t.Fatalf("run(-e e7): %v", err)
	}
	if !strings.Contains(out.String(), "E7") {
		t.Errorf("output missing E7 table:\n%s", out.String())
	}
}

func TestRunRegexFilter(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e1|e7"}, &out); err != nil {
		t.Fatalf("run(-run e1|e7): %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "E1 —") || !strings.Contains(s, "E7 —") {
		t.Errorf("expected E1 and E7 tables:\n%s", s)
	}
	if strings.Contains(s, "E10 —") {
		t.Errorf("whole-ID anchoring violated, E10 leaked in:\n%s", s)
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "e7", "-json"}, &out); err != nil {
		t.Fatalf("run(-run e7 -json): %v", err)
	}
	var tables []*experiments.Table
	if err := json.Unmarshal(out.Bytes(), &tables); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(tables) != 1 || tables[0].ID != "E7" {
		t.Errorf("unexpected tables: %+v", tables)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "e99"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadPattern(t *testing.T) {
	if err := run([]string{"-run", "e[("}, &bytes.Buffer{}); err == nil {
		t.Error("invalid regexp should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag should error")
	}
}

// TestRunAllParallelByteIdentical runs the full registry sequentially
// and with a saturated worker pool; the rendered output must be
// byte-identical (the acceptance bar for the parallel runner).
func TestRunAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full E1–E13 regeneration is the slow lane")
	}
	var seq, par bytes.Buffer
	if err := run([]string{"-parallel", "1"}, &seq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run([]string{"-parallel", "8"}, &par); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Error("-parallel 8 output differs from -parallel 1")
	}
}
