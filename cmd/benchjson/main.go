// Command benchjson converts `go test -bench` text output into a
// stable JSON array, and compares two such JSON files benchstat-style.
// It backs the CI bench-compare step that publishes BENCH_graph.json:
//
//	go test -bench . -benchmem -run '^$' ./internal/graph | benchjson > BENCH_graph.json
//	benchjson -compare BENCH_graph.baseline.json BENCH_graph.json
//
// Compare prints one row per benchmark present in both files with the
// time and allocation deltas. Timing drift is surfaced, never gated —
// CI runners are too noisy. Allocation counts are deterministic on a
// fixed workload, so those CAN gate: with -gate-allocs, compare exits
// non-zero when any benchmark's allocs/op regresses past the given
// percentage (optionally restricted to names matching -gate-match):
//
//	benchjson -gate-allocs 10 -gate-match 'plain/w=1' -compare old.json new.json
//
// Two more report modes read a single JSON file. -speedup pairs every
// row whose name contains "scratch" (restricted by the given regexp)
// with its "delta" counterpart and prints the time and allocation
// ratios — the CI summary line for the delta-vs-scratch boundary
// ladder. -wladder groups rows carrying a /w=<k> suffix and prints the
// worker-scaling table (speedup and efficiency vs the w=1 row):
//
//	benchjson -speedup 'ChurnScale/boundary' BENCH_churn.json
//	benchjson -wladder BENCH_faithful.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric units a benchmark
	// published besides the standard three — latency percentiles
	// ("p50-ns", "p99-ns") and throughput ("req/s") for the live
	// serving ladder. Keyed by unit exactly as printed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches the fixed prefix of a benchmark result line, e.g.
//
//	BenchmarkAllPairs/n=64-8   100   633407 ns/op   302692 B/op   4162 allocs/op
//
// Everything after ns/op is a sequence of "<value> <unit>" pairs —
// B/op, allocs/op, and any custom b.ReportMetric units (e.g. "plays",
// "deliveries/op") — parsed by unit so metric order never matters.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// gate configures the allocation-regression check in compare mode.
type gate struct {
	// allocsPct fails the compare when allocs/op regresses by more
	// than this percentage; <= 0 disables the gate.
	allocsPct float64
	// match restricts the gate to benchmark names it matches; nil
	// gates every benchmark present in both files.
	match *regexp.Regexp
}

func main() {
	compare := flag.String("compare", "", "old.json to diff against; requires new.json as the positional arg")
	gateAllocs := flag.Float64("gate-allocs", 0, "with -compare: fail when allocs/op regresses more than this percent (0 = report only)")
	gateMatch := flag.String("gate-match", "", "with -gate-allocs: regexp restricting which benchmarks are gated")
	speedup := flag.String("speedup", "", "print scratch-vs-delta ratios for rows matching this regexp in the positional bench.json")
	wladder := flag.Bool("wladder", false, "print the worker-scaling ladder for /w=<k> rows in the positional bench.json")
	flag.Parse()
	g := gate{allocsPct: *gateAllocs}
	if *gateMatch != "" {
		re, err := regexp.Compile(*gateMatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -gate-match:", err)
			os.Exit(1)
		}
		g.match = re
	}
	if err := run(*compare, g, *speedup, *wladder, flag.Args(), os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(compare string, g gate, speedup string, wladder bool, args []string, in io.Reader, out io.Writer) error {
	modes := 0
	for _, on := range []bool{compare != "", speedup != "", wladder} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-compare, -speedup and -wladder are mutually exclusive")
	}
	if compare != "" {
		if len(args) != 1 {
			return fmt.Errorf("-compare needs exactly one positional new.json, got %d args", len(args))
		}
		return runCompare(compare, args[0], g, out)
	}
	if speedup != "" {
		re, err := regexp.Compile(speedup)
		if err != nil {
			return fmt.Errorf("-speedup: %w", err)
		}
		if len(args) != 1 {
			return fmt.Errorf("-speedup needs exactly one positional bench.json, got %d args", len(args))
		}
		return runSpeedup(args[0], re, out)
	}
	if wladder {
		if len(args) != 1 {
			return fmt.Errorf("-wladder needs exactly one positional bench.json, got %d args", len(args))
		}
		return runWLadder(args[0], out)
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parse extracts benchmark lines from `go test -bench` output,
// stripping the -cpu suffix (`-8`) so names are machine-independent.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := Result{Name: name, Iters: iters, NsPerOp: ns}
		rest := strings.Fields(m[4])
		for i := 0; i+1 < len(rest); i += 2 {
			switch rest[i+1] {
			case "B/op":
				res.BytesOp, _ = strconv.ParseInt(rest[i], 10, 64)
			case "allocs/op":
				res.AllocsOp, _ = strconv.ParseInt(rest[i], 10, 64)
			default:
				v, err := strconv.ParseFloat(rest[i], 64)
				if err != nil {
					continue
				}
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[rest[i+1]] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func load(path string) (map[string]Result, []string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []Result
	if err := json.Unmarshal(b, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(list))
	order := make([]string, 0, len(list))
	for _, r := range list {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	return m, order, nil
}

// runSpeedup pairs every "scratch" row matching re with its "delta"
// counterpart and prints the improvement ratios. No matching pair is
// an error: a summary line silently reporting nothing would hide a
// renamed benchmark from the CI lane that publishes it.
func runSpeedup(path string, re *regexp.Regexp, out io.Writer) error {
	m, order, err := load(path)
	if err != nil {
		return err
	}
	pairs := 0
	for _, name := range order {
		if !re.MatchString(name) || !strings.Contains(name, "scratch") {
			continue
		}
		counterpart := strings.Replace(name, "scratch", "delta", 1)
		d, ok := m[counterpart]
		if !ok {
			continue
		}
		s := m[name]
		if d.NsPerOp <= 0 {
			return fmt.Errorf("%s: non-positive ns/op", counterpart)
		}
		line := fmt.Sprintf("%s: delta %.1fx faster (%.0f -> %.0f ns/op)",
			strings.Replace(name, "/scratch", "", 1), s.NsPerOp/d.NsPerOp, s.NsPerOp, d.NsPerOp)
		if s.AllocsOp > 0 && d.AllocsOp > 0 {
			line += fmt.Sprintf(", %.1fx fewer allocs (%d -> %d allocs/op)",
				float64(s.AllocsOp)/float64(d.AllocsOp), s.AllocsOp, d.AllocsOp)
		}
		fmt.Fprintln(out, line)
		pairs++
	}
	if pairs == 0 {
		return fmt.Errorf("no scratch/delta pairs match %q in %s", re, path)
	}
	return nil
}

// wRow captures one /w=<k> suffix row of a worker ladder.
var wRow = regexp.MustCompile(`^(.+)/w=(\d+)$`)

// runWLadder groups rows by their name prefix before a /w=<k> suffix
// and prints each group's scaling table: ns/op, speedup over the w=1
// row and parallel efficiency (speedup/k). This is the nightly check
// that the search pool actually scales on a multi-core runner.
func runWLadder(path string, out io.Writer) error {
	m, order, err := load(path)
	if err != nil {
		return err
	}
	type rung struct {
		w  int
		ns float64
	}
	groups := map[string][]rung{}
	var groupOrder []string
	for _, name := range order {
		g := wRow.FindStringSubmatch(name)
		if g == nil {
			continue
		}
		w, _ := strconv.Atoi(g[2])
		if _, seen := groups[g[1]]; !seen {
			groupOrder = append(groupOrder, g[1])
		}
		groups[g[1]] = append(groups[g[1]], rung{w, m[name].NsPerOp})
	}
	if len(groupOrder) == 0 {
		return fmt.Errorf("no /w=<k> rows in %s", path)
	}
	w := bufio.NewWriter(out)
	for _, name := range groupOrder {
		rungs := groups[name]
		sort.Slice(rungs, func(i, j int) bool { return rungs[i].w < rungs[j].w })
		base := rungs[0].ns // w=1 first after sorting whenever present
		fmt.Fprintf(w, "%s:\n", name)
		for _, r := range rungs {
			speed := base / r.ns
			fmt.Fprintf(w, "  w=%-3d %14.0f ns/op   speedup %5.2fx   efficiency %3.0f%%\n",
				r.w, r.ns, speed, 100*speed*float64(rungs[0].w)/float64(r.w))
		}
	}
	return w.Flush()
}

// metricUnits returns the sorted union of both results' custom metric
// units.
func metricUnits(a, b Result) []string {
	if len(a.Metrics) == 0 && len(b.Metrics) == 0 {
		return nil
	}
	set := map[string]struct{}{}
	for u := range a.Metrics {
		set[u] = struct{}{}
	}
	for u := range b.Metrics {
		set[u] = struct{}{}
	}
	units := make([]string, 0, len(set))
	for u := range set {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

func runCompare(oldPath, newPath string, g gate, out io.Writer) error {
	oldM, order, err := load(oldPath)
	if err != nil {
		return err
	}
	newM, _, err := load(newPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "%-40s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ")
	var regressions []string
	for _, name := range order {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14.0f %14s %8s %10s\n", name, o.NsPerOp, "gone", "", "")
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		allocs := fmt.Sprintf("%+d", n.AllocsOp-o.AllocsOp)
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %8s %10s\n", name, o.NsPerOp, n.NsPerOp, delta, allocs)
		// Custom metrics (latency percentiles, throughput) get one
		// indented sub-row per unit present on either side.
		for _, unit := range metricUnits(o, n) {
			ov, oOK := o.Metrics[unit]
			nv, nOK := n.Metrics[unit]
			switch {
			case oOK && nOK:
				md := "~"
				if ov > 0 {
					md = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
				}
				fmt.Fprintf(w, "%-40s %14.0f %14.0f %8s\n", "  └ "+unit, ov, nv, md)
			case nOK:
				fmt.Fprintf(w, "%-40s %14s %14.0f %8s\n", "  └ "+unit, "new", nv, "")
			default:
				fmt.Fprintf(w, "%-40s %14.0f %14s %8s\n", "  └ "+unit, ov, "gone", "")
			}
		}
		if g.allocsPct > 0 && o.AllocsOp > 0 && (g.match == nil || g.match.MatchString(name)) {
			pct := 100 * float64(n.AllocsOp-o.AllocsOp) / float64(o.AllocsOp)
			if pct > g.allocsPct {
				regressions = append(regressions,
					fmt.Sprintf("%s: %d -> %d allocs/op (%+.1f%% > %+.1f%%)", name, o.AllocsOp, n.AllocsOp, pct, g.allocsPct))
			}
		}
	}
	var added []string
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "%-40s %14s %14.0f %8s %10s\n", name, "new", newM[name].NsPerOp, "", "")
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(regressions) > 0 {
		return fmt.Errorf("allocation regression past %.0f%%:\n  %s", g.allocsPct, strings.Join(regressions, "\n  "))
	}
	return nil
}
