package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/graph
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSSSP32-8   	     100	      1583 ns/op	       5 B/op	       0 allocs/op
BenchmarkAllPairs/n=64-8         	     100	    633407 ns/op	  302692 B/op	    4162 allocs/op
BenchmarkNoMem-8   	     200	      77.5 ns/op
BenchmarkMetric/w=8-8  	       2	 372085479 ns/op	        96.00 plays	403558104 B/op	 3977178 allocs/op
PASS
ok  	repro/internal/graph	0.398s
`

func TestParse(t *testing.T) {
	res, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4", len(res))
	}
	if res[0].Name != "BenchmarkSSSP32" || res[0].AllocsOp != 0 || res[0].BytesOp != 5 {
		t.Errorf("first result = %+v", res[0])
	}
	if res[1].Name != "BenchmarkAllPairs/n=64" || res[1].NsPerOp != 633407 || res[1].AllocsOp != 4162 {
		t.Errorf("second result = %+v", res[1])
	}
	if res[2].Name != "BenchmarkNoMem" || res[2].NsPerOp != 77.5 {
		t.Errorf("third result = %+v", res[2])
	}
	// Custom b.ReportMetric columns (here "plays") must not hide the
	// B/op and allocs/op that follow them.
	if res[3].Name != "BenchmarkMetric/w=8" || res[3].BytesOp != 403558104 || res[3].AllocsOp != 3977178 {
		t.Errorf("fourth result = %+v", res[3])
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run("", gate{}, "", false, nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var list []Result
	if err := json.Unmarshal(out.Bytes(), &list); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(list) != 4 || list[1].Iters != 100 {
		t.Fatalf("round trip lost data: %+v", list)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[{"name":"BenchmarkA","iters":10,"ns_per_op":1000,"allocs_per_op":50},
	             {"name":"BenchmarkGone","iters":10,"ns_per_op":5}]`
	newJSON := `[{"name":"BenchmarkA","iters":10,"ns_per_op":500,"allocs_per_op":5},
	             {"name":"BenchmarkNew","iters":10,"ns_per_op":7}]`
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(oldPath, gate{}, "", false, []string{newPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"-50.0%", "-45", "gone", "BenchmarkNew"} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
}

func TestCompareArgValidation(t *testing.T) {
	if err := run("old.json", gate{}, "", false, nil, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error without positional new.json")
	}
}

// TestSpeedup: -speedup pairs scratch rows with their delta
// counterparts and prints both ratios; an unmatched pattern errors.
func TestSpeedup(t *testing.T) {
	dir := t.TempDir()
	benchJSON := `[
	  {"name":"BenchmarkChurnScale/boundary/n=32/scratch","iters":1,"ns_per_op":9000000,"allocs_per_op":3000000},
	  {"name":"BenchmarkChurnScale/boundary/n=32/delta","iters":1,"ns_per_op":50000,"allocs_per_op":60000},
	  {"name":"BenchmarkOther","iters":1,"ns_per_op":5}]`
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(benchJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run("", gate{}, "ChurnScale/boundary", false, []string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"n=32", "180.0x faster", "50.0x fewer allocs"} {
		if !strings.Contains(got, want) {
			t.Errorf("speedup output missing %q:\n%s", want, got)
		}
	}
	// A pattern matching no pair must fail loudly, not print nothing.
	if err := run("", gate{}, "NoSuchLadder", false, []string{path}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for a pattern with no scratch/delta pairs")
	}
}

// TestWLadder: -wladder groups /w=<k> rows and reports speedup and
// efficiency against the w=1 rung.
func TestWLadder(t *testing.T) {
	dir := t.TempDir()
	benchJSON := `[
	  {"name":"BenchmarkCheck/plain/w=1","iters":1,"ns_per_op":8000},
	  {"name":"BenchmarkCheck/plain/w=4","iters":1,"ns_per_op":2500},
	  {"name":"BenchmarkCheck/plain/w=8","iters":1,"ns_per_op":2000},
	  {"name":"BenchmarkNoSuffix","iters":1,"ns_per_op":5}]`
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(benchJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run("", gate{}, "", true, []string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"BenchmarkCheck/plain:", "w=1", "3.20x", " 80%", "4.00x", " 50%"} {
		if !strings.Contains(got, want) {
			t.Errorf("wladder output missing %q:\n%s", want, got)
		}
	}
	// A file with no /w= rows must fail loudly.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`[{"name":"BenchmarkX","iters":1,"ns_per_op":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", gate{}, "", true, []string{empty}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for a file with no worker ladder")
	}
	// Modes are mutually exclusive.
	if err := run("old.json", gate{}, "x", false, []string{path}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error combining -compare and -speedup")
	}
}

// TestGateAllocs: the compare gate fails on an allocs/op regression
// past the threshold, honours -gate-match, and stays quiet within it.
func TestGateAllocs(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[{"name":"BenchmarkCheck/plain/w=1","iters":1,"ns_per_op":100,"allocs_per_op":1000},
	             {"name":"BenchmarkCheck/faithful/w=1","iters":1,"ns_per_op":100,"allocs_per_op":1000}]`
	// plain stays within 10%; faithful regresses 50%.
	newJSON := `[{"name":"BenchmarkCheck/plain/w=1","iters":1,"ns_per_op":100,"allocs_per_op":1050},
	             {"name":"BenchmarkCheck/faithful/w=1","iters":1,"ns_per_op":100,"allocs_per_op":1500}]`
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	// No gate: regressions are reported, not enforced.
	if err := runCompare(oldPath, newPath, gate{}, &bytes.Buffer{}); err != nil {
		t.Fatalf("ungated compare failed: %v", err)
	}
	// Gate restricted to the plain ladder: within threshold, passes.
	plainOnly := gate{allocsPct: 10, match: regexp.MustCompile(`plain/`)}
	if err := runCompare(oldPath, newPath, plainOnly, &bytes.Buffer{}); err != nil {
		t.Fatalf("plain ladder within 10%% should pass: %v", err)
	}
	// Gate everything: the faithful regression trips it, by name.
	err := runCompare(oldPath, newPath, gate{allocsPct: 10}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "allocation regression") {
		t.Fatalf("want allocation-regression failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "faithful") {
		t.Fatalf("failure should name the regressing benchmark: %v", err)
	}
}

// TestParseMetrics: custom b.ReportMetric units land in the Metrics
// map keyed by unit — the latency-percentile rows of the live ladder.
func TestParseMetrics(t *testing.T) {
	line := "BenchmarkLive/n=8/rate=2000-8  1  251000000 ns/op  52341 p50-ns  310882 p99-ns  1991 req/s  12 B/op  3 allocs/op\n"
	res, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("parsed %d results, want 1", len(res))
	}
	r := res[0]
	if r.BytesOp != 12 || r.AllocsOp != 3 {
		t.Fatalf("standard metrics lost around custom ones: %+v", r)
	}
	for unit, want := range map[string]float64{"p50-ns": 52341, "p99-ns": 310882, "req/s": 1991} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("Metrics[%q] = %v, want %v", unit, got, want)
		}
	}
}

// TestCompareMetrics: compare renders one indented sub-row per custom
// metric with its delta.
func TestCompareMetrics(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[{"name":"BenchmarkLive/n=8","iters":1,"ns_per_op":1000,"metrics":{"p50-ns":100,"p99-ns":400}}]`
	newJSON := `[{"name":"BenchmarkLive/n=8","iters":1,"ns_per_op":1000,"metrics":{"p50-ns":110,"req/s":2000}}]`
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(oldPath, gate{}, "", false, []string{newPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"p50-ns", "+10.0%", "p99-ns", "gone", "req/s", "new"} {
		if !strings.Contains(got, want) {
			t.Errorf("metric compare missing %q:\n%s", want, got)
		}
	}
}
