// Manipulation: inject the paper's §4.3 manipulations against both
// protocol variants and watch what happens — plain FPSS silently
// accepts corrupted state (and payment fraud profits), while the
// extended specification's checkers and bank catch every attempt.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rational"
)

func main() {
	g := graph.Figure1()
	params := rational.DefaultParams(g)

	fmt.Println("deviation search on Figure 1 (every node × every catalogued deviation)")

	plain, err := core.CheckFaithfulness(&rational.PlainSystem{Graph: g, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain FPSS: %d plays, %d profitable deviations found\n", plain.Checked, len(plain.Violations))
	for _, v := range plain.Violations {
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("verdict: IC=%v CC=%v AC=%v — not faithful\n", plain.IC(), plain.CC(), plain.AC())

	faithfulRep, err := core.CheckFaithfulness(&rational.FaithfulSystem{Graph: g, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextended FPSS: %d plays, %d profitable deviations found\n",
		faithfulRep.Checked, len(faithfulRep.Violations))
	fmt.Printf("verdict: IC=%v CC=%v AC=%v — faithful (Theorem 1)\n",
		faithfulRep.IC(), faithfulRep.CC(), faithfulRep.AC())
}
