// Interdomain: reproduce the paper's Example 1 interactively — node C
// lies about its transit cost, which pays off under a naive pricing
// scheme but not under the FPSS VCG mechanism.
package main

import (
	"fmt"
	"log"

	"repro/internal/fpss"
	"repro/internal/graph"
)

func main() {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")

	fmt.Println("Example 1 (paper §4.1): C's true cost is 1.")
	fmt.Println("declared | u(C) naive | u(C) VCG | X→Z goes via C")
	for declared := graph.Cost(1); declared <= 8; declared++ {
		d := declared
		res, err := fpss.Run(fpss.Config{
			Graph: g,
			Strategies: map[graph.NodeID]*fpss.Strategy{
				c: {DeclareCost: func(graph.Cost) graph.Cost { return d }},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		routing := make(map[graph.NodeID]fpss.RoutingTable)
		pricing := make(map[graph.NodeID]fpss.PricingTable)
		declaredCosts := make(fpss.CostTable)
		trueCosts := make(fpss.CostTable)
		for id, node := range res.Nodes {
			routing[id] = node.Routing()
			pricing[id] = node.Pricing()
			declaredCosts[id] = node.DeclaredCost()
			trueCosts[id] = g.Cost(id)
		}
		var utils [2]int64
		for i, scheme := range []fpss.PricingScheme{fpss.SchemeDeclaredCost, fpss.SchemeVCG} {
			exec, err := fpss.Execute(routing, pricing, fpss.ExecConfig{
				TrueCosts:          trueCosts,
				DeclaredCosts:      declaredCosts,
				Traffic:            fpss.AllToAllTraffic(g.N(), 1),
				DeliveryValue:      10_000,
				UndeliveredPenalty: 10_000,
				Scheme:             scheme,
			})
			if err != nil {
				log.Fatal(err)
			}
			utils[i] = exec.Utilities[c]
		}
		fmt.Printf("%8d | %10d | %8d | %v\n",
			declared, utils[0], utils[1], routing[x][z].Path.Contains(c))
	}
	fmt.Println("\nUnder naive pricing the lie pays; under VCG truth is dominant —")
	fmt.Println("the strategyproofness Proposition 2 builds on.")
}
