// Quickstart: build the paper's Figure-1 network, run the faithful
// interdomain-routing protocol end to end, and print the green-lit
// routing/pricing tables and realized utilities.
package main

import (
	"fmt"
	"log"

	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
)

func main() {
	// The example network of the paper's Figure 1: six autonomous
	// systems with per-packet transit costs.
	g := graph.Figure1()

	// Run the extended FPSS specification: cost flood, routing and
	// pricing construction mirrored by checker nodes, bank checkpoint,
	// then the execution phase with all-to-all traffic.
	res, err := faithful.Run(faithful.Config{
		Graph:              g,
		Traffic:            fpss.AllToAllTraffic(g.N(), 1),
		DeliveryValue:      10_000,
		UndeliveredPenalty: 10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("green-lit: %v (construction used %d messages)\n\n",
		res.Completed, res.Construction.Sent)

	// Every node converged to the same answers the centralized VCG
	// mechanism would compute. Show X's view.
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	route := res.Nodes[x].Routing()[z]
	fmt.Printf("X's lowest-cost path to Z: cost=%d via", route.Cost)
	for _, hop := range route.Path {
		fmt.Printf(" %s", g.Name(hop))
	}
	fmt.Println()
	for k, e := range res.Nodes[x].Pricing()[z] {
		fmt.Printf("X pays %s a VCG premium of %d per packet\n", g.Name(k), e.Price)
	}

	fmt.Println("\nrealized utilities (payments - true transit costs + delivery value):")
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		fmt.Printf("  %s: %d\n", g.Name(id), res.Utilities[id])
	}
}
