// Election: the paper's §3 motivating story. A naive leader election
// fails once nodes are rational (everyone dodges the CPU-intensive
// job); the faithful Vickrey-procurement variant elects the most
// powerful node in equilibrium and pays it enough to want the job.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/election"
	"repro/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	topo, err := graph.RandomBiconnected(5, 3, 5, rng)
	if err != nil {
		log.Fatal(err)
	}
	powers := []int64{12, 40, 7, 25, 18} // node 1 is the most powerful
	base := election.Config{
		Topology:           topo,
		Powers:             powers,
		ServiceValue:       1,
		CostScale:          1200,
		NonProgressPenalty: 100_000,
	}

	// Naive spec, rational nodes: everyone underreports to dodge.
	naive := base
	naive.Variant = election.Naive
	dodgers := make(map[graph.NodeID]*election.Strategy)
	for i := range powers {
		dodgers[graph.NodeID(i)] = &election.Strategy{Declare: func(int64) int64 { return 1 }}
	}
	nr, err := election.Run(naive, dodgers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive + rational nodes: leader = node %d (power %d) — most powerful is node 1 (power 40)\n",
		nr.Leader, powers[nr.Leader])

	// Faithful spec: truthful reporting is an equilibrium.
	faithfulCfg := base
	faithfulCfg.Variant = election.Faithful
	fr, err := election.Run(faithfulCfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faithful (Vickrey procurement): leader = node %d (power %d), paid %d (own cost %d)\n",
		fr.Leader, powers[fr.Leader], fr.Payment, faithfulCfg.ServingCost(int(fr.Leader)))
	fmt.Println("\nutilities under the faithful spec:")
	for i := range powers {
		fmt.Printf("  node %d: %d\n", i, fr.Utilities[graph.NodeID(i)])
	}
}
