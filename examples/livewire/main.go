// Livewire: run the distributed FPSS computation over real goroutines
// and mailboxes (package livenet) instead of the deterministic event
// simulator, with one rational node lying about its transit cost. The
// converged tables are delivery-order independent: every run, under
// any scheduler interleaving, reaches the same fixpoint the
// centralized VCG mechanism computes for the declared costs.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/livenet"
	"repro/internal/sim"
)

func main() {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")

	for run := 1; run <= 3; run++ {
		handlers := make(map[sim.Addr]sim.Handler, g.N())
		nodes := make(map[graph.NodeID]*fpss.Node, g.N())
		for i := 0; i < g.N(); i++ {
			id := graph.NodeID(i)
			var strat *fpss.Strategy
			if id == c {
				strat = &fpss.Strategy{DeclareCost: func(graph.Cost) graph.Cost { return 5 }}
			}
			node := fpss.NewNode(id, g.Cost(id), g.Neighbors(id), strat)
			nodes[id] = node
			handlers[sim.Addr(id)] = node
		}

		net := livenet.New(handlers)
		if err := net.Start(); err != nil {
			log.Fatal(err)
		}
		if err := net.WaitQuiescence(10 * time.Second); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			net.Inject(fpss.BankAddr, sim.Addr(i), fpss.StartPhase2{})
		}
		if err := net.WaitQuiescence(30 * time.Second); err != nil {
			log.Fatal(err)
		}
		net.Shutdown()

		route := nodes[x].Routing()[z]
		fmt.Printf("run %d (goroutines, C lies ĉ=5): %d messages, X→Z = ", run, net.Counters().Sent)
		for i, hop := range route.Path {
			if i > 0 {
				fmt.Print("-")
			}
			fmt.Print(g.Name(hop))
		}
		fmt.Printf(" (cost %d)\n", route.Cost)
	}
	fmt.Println("\nsame fixpoint every run — the composite route order makes the")
	fmt.Println("asynchronous computation delivery-order independent.")
}
